"""Streaming pooling kernels (paper §III-B2).

"The pooling kernel is built similarly to the convolutional one.  Since the
pooling has no parameters, output pixels are calculated as soon as enough
data is accumulated inside the internal buffers.  In addition, since each
output pixel depends only on its own feature map, we do not need to wait
until input is finished, but can produce output at the same clock cycle at
which the input is received."

Concretely: with depth-first streaming, the K x K window of channel ``i``
completes exactly when element ``(r, c, i)`` of the window's bottom-right
pixel arrives — so the kernel can emit channel ``i``'s max in that same
cycle, never stalling the input (output rate ≤ input rate because pooling
is contractive).
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..dataflow.window import depth_first_buffer_elements
from ..nn.graph import MaxPoolNode, TensorSpec

__all__ = ["MaxPoolKernel"]


class MaxPoolKernel(Kernel):
    """Max pooling over a depth-first pixel stream, one in / up to one out per cycle."""

    supports_leap = True
    leap_counters = ("images_done",)

    def __init__(self, name: str, node: MaxPoolNode, in_spec: TensorSpec) -> None:
        super().__init__(name)
        self.k = node.kernel_size
        self.stride = node.stride
        self.pad = node.pad
        self.h = in_spec.height + 2 * node.pad
        self.w = in_spec.width + 2 * node.pad
        self.channels = in_spec.channels
        # Flat Python-int grid: element (r, c, i) lives at (r*w + c)*C + i.
        # Plain list indexing beats per-cycle numpy scalar access.
        self._grid = [0] * (self.h * self.w * self.channels)
        self._total = self.h * self.w * self.channels
        self._pos = 0
        self._pixel = 0
        self._i = 0
        self.images_done = 0
        # Per-pixel geometry tables and the flat offsets of the K x K window
        # (relative to the bottom-right element, same channel).
        self._emit_px = [
            self._emits_at(r, c) for r in range(self.h) for c in range(self.w)
        ]
        self._pad_px = [
            self._is_pad(r, c) for r in range(self.h) for c in range(self.w)
        ]
        self._win_offsets = [
            (dr * self.w + dc) * self.channels
            for dr in range(self.k)
            for dc in range(self.k)
        ]

    def hardware_buffer_elements(self) -> int:
        return depth_first_buffer_elements(self.w, self.channels, self.k)

    def expected_cycles_per_image(self) -> int:
        """Pooling adds no stall cycles: per-image cost is the scan itself."""
        return self._total

    def leap_phase(self, cycle: int) -> tuple[int, ...]:
        return (self._pos,)

    def batch_compute(self, x: np.ndarray) -> np.ndarray:
        """Batched functional max pool, ``(N, H, W, C)`` -> ``(N, Ho, Wo, C)``.

        Mirrors the streaming kernel exactly: the grid is padded with level 0
        (neutral under max for non-negative levels) and outputs appear at the
        stride-valid window positions.
        """
        n = x.shape[0]
        grid = np.zeros((n, self.h, self.w, self.channels), dtype=np.int64)
        p = self.pad
        grid[:, p : self.h - p, p : self.w - p, :] = x
        windows = np.lib.stride_tricks.sliding_window_view(grid, (self.k, self.k), axis=(1, 2))
        windows = windows[:, :: self.stride, :: self.stride]
        return windows.max(axis=(-2, -1))

    def _position(self) -> tuple[int, int, int]:
        pixel, i = divmod(self._pos, self.channels)
        r, c = divmod(pixel, self.w)
        return r, c, i

    def _emits_at(self, r: int, c: int) -> bool:
        if r < self.k - 1 or c < self.k - 1:
            return False
        return (r - (self.k - 1)) % self.stride == 0 and (c - (self.k - 1)) % self.stride == 0

    def _is_pad(self, r: int, c: int) -> bool:
        p = self.pad
        return p > 0 and (r < p or r >= self.h - p or c < p or c >= self.w - p)

    def tick(self, cycle: int) -> None:
        if self._pos >= self._total:
            self._finish_image()
        pixel = self._pixel
        emits = self._emit_px[pixel]
        out = self.outputs[0]
        if emits and len(out._fifo) >= out.capacity:
            # Must emit this cycle but there is no space: stall the input too
            # (the value cannot be consumed without producing).
            return self._blocked(cycle)
        stats = self.stats
        if self._pad_px[pixel]:
            value = 0  # level 0: neutral under max for non-negative levels
        else:
            inp = self.inputs[0]
            fifo = inp._fifo
            if not (fifo and fifo[0][1] <= cycle):
                return self._starved(cycle)
            value = inp.pop(cycle)
            stats.elements_in += 1
        i = self._i
        base = pixel * self.channels + i
        grid = self._grid
        grid[base] = value
        self._pos += 1
        if i + 1 < self.channels:
            self._i = i + 1
        else:
            self._i = 0
            self._pixel = pixel + 1
        stats.active_cycles += 1
        if stats.first_active_cycle is None:
            stats.first_active_cycle = cycle
        stats.last_active_cycle = cycle
        if emits:
            out.push(max(grid[base - off] for off in self._win_offsets), cycle)
            stats.elements_out += 1
        if self._pos >= self._total:
            self._finish_image()

    def _finish_image(self) -> None:
        if self._pos >= self._total:
            self.images_done += 1
            self._pos = 0
            self._pixel = 0
            self._i = 0

    def reset(self) -> None:
        super().reset()
        self._pos = 0
        self._pixel = 0
        self._i = 0
        self._grid = [0] * len(self._grid)
        self.images_done = 0
