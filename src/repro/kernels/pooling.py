"""Streaming pooling kernels (paper §III-B2).

"The pooling kernel is built similarly to the convolutional one.  Since the
pooling has no parameters, output pixels are calculated as soon as enough
data is accumulated inside the internal buffers.  In addition, since each
output pixel depends only on its own feature map, we do not need to wait
until input is finished, but can produce output at the same clock cycle at
which the input is received."

Concretely: with depth-first streaming, the K x K window of channel ``i``
completes exactly when element ``(r, c, i)`` of the window's bottom-right
pixel arrives — so the kernel can emit channel ``i``'s max in that same
cycle, never stalling the input (output rate ≤ input rate because pooling
is contractive).
"""

from __future__ import annotations

import numpy as np

from ..dataflow.kernel import Kernel
from ..dataflow.window import depth_first_buffer_elements
from ..nn.graph import MaxPoolNode, TensorSpec

__all__ = ["MaxPoolKernel"]


class MaxPoolKernel(Kernel):
    """Max pooling over a depth-first pixel stream, one in / up to one out per cycle."""

    def __init__(self, name: str, node: MaxPoolNode, in_spec: TensorSpec) -> None:
        super().__init__(name)
        self.k = node.kernel_size
        self.stride = node.stride
        self.pad = node.pad
        self.h = in_spec.height + 2 * node.pad
        self.w = in_spec.width + 2 * node.pad
        self.channels = in_spec.channels
        self._grid = np.zeros((self.h, self.w, self.channels), dtype=np.int64)
        self._pos = 0
        self.images_done = 0

    @property
    def _total(self) -> int:
        return self.h * self.w * self.channels

    def hardware_buffer_elements(self) -> int:
        return depth_first_buffer_elements(self.w, self.channels, self.k)

    def expected_cycles_per_image(self) -> int:
        """Pooling adds no stall cycles: per-image cost is the scan itself."""
        return self._total

    def _position(self) -> tuple[int, int, int]:
        pixel, i = divmod(self._pos, self.channels)
        r, c = divmod(pixel, self.w)
        return r, c, i

    def _emits_at(self, r: int, c: int) -> bool:
        if r < self.k - 1 or c < self.k - 1:
            return False
        return (r - (self.k - 1)) % self.stride == 0 and (c - (self.k - 1)) % self.stride == 0

    def _is_pad(self, r: int, c: int) -> bool:
        p = self.pad
        return p > 0 and (r < p or r >= self.h - p or c < p or c >= self.w - p)

    def tick(self, cycle: int) -> None:
        if self._pos >= self._total:
            self._finish_image()
        r, c, i = self._position()
        inp = self.inputs[0]
        out = self.outputs[0]
        emits = self._emits_at(r, c)
        if emits and not out.can_push():
            # Must emit this cycle but there is no space: stall the input too
            # (the value cannot be consumed without producing).
            self._blocked(cycle)
            return
        if self._is_pad(r, c):
            value = 0  # level 0: neutral under max for non-negative levels
        else:
            if not inp.can_pop(cycle):
                self._starved(cycle)
                return
            value = inp.pop(cycle)
            self.stats.elements_in += 1
        self._grid[r, c, i] = value
        self._pos += 1
        self.stats.mark_active(cycle)
        if emits:
            window = self._grid[r - self.k + 1 : r + 1, c - self.k + 1 : c + 1, i]
            out.push(int(window.max()), cycle)
            self.stats.elements_out += 1
        if self._pos >= self._total:
            self._finish_image()

    def _finish_image(self) -> None:
        if self._pos >= self._total:
            self.images_done += 1
            self._pos = 0

    def reset(self) -> None:
        super().reset()
        self._pos = 0
        self._grid.fill(0)
        self.images_done = 0
