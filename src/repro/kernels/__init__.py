"""QNN streaming kernels: the hardware building blocks of §III-B."""

from .conv import ConvKernel
from .elementwise import AddKernel, ForkKernel
from .io import HostSink, HostSource
from .pooling import MaxPoolKernel
from .reduce import GlobalAvgSumKernel
from .threshold import ThresholdKernel

__all__ = [
    "ConvKernel",
    "AddKernel",
    "ForkKernel",
    "HostSink",
    "HostSource",
    "MaxPoolKernel",
    "GlobalAvgSumKernel",
    "ThresholdKernel",
]
