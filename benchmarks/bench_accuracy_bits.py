"""Accuracy experiment: 2-bit activations beat 1-bit (the paper's headline).

Paper claims reproduced in *ordering* (absolute numbers need ImageNet):
AlexNet top-1 41.8% (binary) -> 51.03% (2-bit); VGG-like CIFAR-10
80.1% (FINN, binary) -> 84.2% (ours, 2-bit).  Here the same topology is
trained with 1-bit and 2-bit activations on the synthetic CIFAR-like
dataset and evaluated through the exported integer inference path.
"""

from repro.eval import accuracy_experiment


def run_both() -> dict[str, float]:
    acc2 = accuracy_experiment(act_bits=2, seed=0)
    acc1 = accuracy_experiment(act_bits=1, seed=0)
    return {"acc_2bit": acc2, "acc_1bit": acc1}


def test_two_bit_activations_beat_one_bit(benchmark):
    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    print(
        f"\n2-bit activations: {result['acc_2bit']:.3f}  "
        f"1-bit activations: {result['acc_1bit']:.3f}  (chance 0.200)"
    )
    chance = 0.2
    assert result["acc_2bit"] > chance + 0.1, "2-bit model failed to learn"
    assert result["acc_1bit"] > chance, "1-bit model at or below chance"
    assert result["acc_2bit"] >= result["acc_1bit"], (
        "paper's ordering violated: 2-bit must be at least as accurate"
    )
