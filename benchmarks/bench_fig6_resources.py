"""Figure 6: resource utilisation vs input size (change from the 32x32 baseline).

Reproduced shape: increasing the input from 32x32 to 96x96 costs only ~5%
of every resource class — the architecture's headline scalability claim.
"""

from repro.eval import run_experiment


def test_figure6_resources(benchmark, reporter):
    result = benchmark(run_experiment, "figure6")
    reporter(benchmark, result)
    rows = {r["input"]: r for r in result.rows}

    def growth(row, key):
        return float(row[key].rstrip("%"))

    assert growth(rows["96x96"], "LUT vs 32") < 8.0
    assert growth(rows["96x96"], "FF vs 32") < 8.0
    assert growth(rows["96x96"], "BRAM vs 32") < 8.0
    # growth is monotone in input size
    luts = [growth(rows[f"{s}x{s}"], "LUT vs 32") for s in (32, 64, 96, 144, 224)]
    assert luts == sorted(luts)
