"""Figure 8: energy per single-image inference.

Reproduced shape: the FPGA needs less energy per image everywhere — by an
order of magnitude for the small single-DFE design, and still materially
less ("at least 50%") when multiple FPGAs are used.
"""

from repro.eval import run_experiment


def test_figure8_energy(benchmark, reporter):
    result = benchmark(run_experiment, "figure8")
    reporter(benchmark, result)
    ratios = {(r["input"], r["network"]): r["GPU/DFE"] for r in result.rows}
    # Best case is the small input, order of magnitude
    assert ratios[("32x32", "vgg-like")] > 8
    # Every configuration saves at least ~50% energy (ratio >= 1.5)
    assert all(v >= 1.5 for v in ratios.values()), ratios
