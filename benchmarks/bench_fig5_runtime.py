"""Figure 5: runtime of the streaming architecture vs GPUs across input sizes.

Reproduced shape: the DFE beats the GPU at 32x32 (the paper's 12%; kernel
invocation overhead dominates small inputs on the GPU) while GPUs win at
large inputs (paper: ~4x for ResNet-18 at 224x224).
"""

from repro.eval import run_experiment


def test_figure5_runtime(benchmark, reporter):
    result = benchmark(run_experiment, "figure5")
    reporter(benchmark, result)
    rows = {(r["input"], r["network"]): r for r in result.rows}
    small = rows[("32x32", "vgg-like")]
    assert small["DFE (ms)"] < small["P100 (ms)"]
    assert small["DFE (ms)"] < small["GTX1080 (ms)"]
    resnet = rows[("224x224", "resnet18")]
    assert resnet["P100 (ms)"] < resnet["DFE (ms)"]
    # runtime grows monotonically with input size on the DFE (vgg rows)
    vgg_ms = [rows[(f"{s}x{s}", "vgg-like")]["DFE (ms)"] for s in (32, 96, 144)]
    assert vgg_ms == sorted(vgg_ms)
