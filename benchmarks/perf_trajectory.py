"""Perf-regression trajectory for the cycle simulator.

Streaming-simulator benchmarks call :func:`record` with the simulated cycle
count and the best wall time per round; at session end the benchmark
``conftest`` flushes one trajectory entry (host manifest and per-case
``simulated_cycles_per_second``) to ``BENCH_streaming.json`` at the
repository root.  The file is an append-only list, so plotting it over
commits shows whether a PR sped up or regressed the simulator.  Each entry
carries the full host manifest (interpreter, numpy, CPU count, platform,
git describe) from :func:`repro.telemetry.manifest.host_manifest`, so
trajectories from different machines stay distinguishable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.telemetry.manifest import host_manifest

__all__ = ["BENCH_PATH", "record", "flush"]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

_cases: dict[str, dict[str, Any]] = {}


def record(case: str, simulated_cycles: int, seconds: float, **extra: Any) -> None:
    """Register one benchmark case's throughput for the trajectory entry."""
    _cases[case] = {
        "simulated_cycles": int(simulated_cycles),
        "seconds": float(seconds),
        "simulated_cycles_per_second": round(simulated_cycles / seconds, 1),
        **extra,
    }


def flush() -> None:
    """Append the session's cases to ``BENCH_streaming.json`` (if any ran)."""
    if not _cases:
        return
    entries: list[dict[str, Any]] = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            entries = []
    entries.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **host_manifest(),
            "cases": dict(sorted(_cases.items())),
        }
    )
    BENCH_PATH.write_text(json.dumps(entries, indent=2) + "\n")
    _cases.clear()
