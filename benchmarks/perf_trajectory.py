"""Perf-regression trajectory for the cycle simulator.

Streaming-simulator benchmarks call :func:`record` with the simulated cycle
count and the best wall time per round; at session end the benchmark
``conftest`` flushes one trajectory entry (host manifest and per-case
``simulated_cycles_per_second``) to ``BENCH_streaming.json`` at the
repository root.  The file is an append-only list, so plotting it over
commits shows whether a PR sped up or regressed the simulator.  Each entry
carries the full host manifest (interpreter, numpy, CPU count, platform,
git describe) from :func:`repro.telemetry.manifest.host_manifest`, so
trajectories from different machines stay distinguishable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.perfwatch.baseline import validate_entry
from repro.perfwatch.records import PerfDataError
from repro.telemetry.manifest import host_manifest

__all__ = ["BENCH_PATH", "record", "flush", "peek"]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

_cases: dict[str, dict[str, Any]] = {}
_last_flushed: dict[str, dict[str, Any]] = {}


def record(case: str, simulated_cycles: int, seconds: float, **extra: Any) -> None:
    """Register one benchmark case's throughput for the trajectory entry."""
    _cases[case] = {
        "simulated_cycles": int(simulated_cycles),
        "seconds": float(seconds),
        "simulated_cycles_per_second": round(simulated_cycles / seconds, 1),
        **extra,
    }


def peek() -> dict[str, dict[str, Any]]:
    """The session's cases: pending ones, or the last flushed snapshot.

    The perfwatch plugin folds these into its ``repro-perf/1`` report at
    session finish; the fallback keeps the answer correct whichever of the
    two ``pytest_sessionfinish`` hooks (this module's flush via the bench
    conftest, or the plugin's writer) happens to run first.
    """
    return dict(_cases) or dict(_last_flushed)


def flush() -> None:
    """Append the session's cases to ``BENCH_streaming.json`` (if any ran).

    The entry is validated against the perfwatch known-case registry and
    schema before it is written — a malformed append (unknown case key,
    missing rate) fails the session loudly instead of poisoning the
    trajectory for every later diff.
    """
    if not _cases:
        return
    entries: list[dict[str, Any]] = []
    if BENCH_PATH.exists():
        try:
            entries = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            entries = []
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **host_manifest(),
        "cases": dict(sorted(_cases.items())),
    }
    problems = validate_entry(entry, len(entries))
    if problems:
        raise PerfDataError(
            "refusing to append a malformed trajectory entry: " + "; ".join(problems)
        )
    entries.append(entry)
    BENCH_PATH.write_text(json.dumps(entries, indent=2) + "\n")
    _last_flushed.clear()
    _last_flushed.update(_cases)
    _cases.clear()
