"""Table I: the ResNet-18 architecture table, regenerated from the built graph."""

from repro.eval import run_experiment


def test_table1_resnet_architecture(benchmark, reporter):
    result = benchmark(run_experiment, "table1")
    reporter(benchmark, result)
    by_layer = {r["layer"]: r["output size"] for r in result.rows}
    assert by_layer["conv1"] == "112x112"
    assert by_layer["conv2_x"] == "56x56"
    assert by_layer["conv3_x"] == "28x28"
    assert by_layer["conv4_x"] == "14x14"
    assert by_layer["conv5_x"] == "7x7"
