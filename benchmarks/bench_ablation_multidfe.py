"""Ablation (§III-B6): multi-DFE scale-out cost.

The paper: "the workload can be divided into multiple DFEs with very small
performance degradation", needing only 210 Mbps of the multi-Gbps MaxRing.
This bench sweeps 1..4-way splits of the same network through the cycle
simulator and measures the actual degradation, and checks the bandwidth
arithmetic on the full-size ResNet-18 partition.
"""

import numpy as np

from repro.dataflow import MAXRING, simulate
from repro.eval.reporting import ExperimentResult
from repro.hardware import partition_network
from repro.models import direct_resnet18_graph
from repro.nn import input_to_levels
from repro.nn.export import export_model
from tests.conftest import make_tiny_chain_model


def multidfe_sweep() -> tuple[ExperimentResult, list[float]]:
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(1)
    images = rng.uniform(0, 1, size=(2, 16, 16, 3))
    levels = input_to_levels(images, model.layers[0].quantizer)
    names = [n for n in graph.order if n != graph.input_name]

    rows, latencies = [], []
    base = None
    for n_dfes in (1, 2, 3, 4):
        chunk = (len(names) + n_dfes - 1) // n_dfes
        part = [names[i : i + chunk] for i in range(0, len(names), chunk)] if n_dfes > 1 else None
        sr = simulate(graph, levels, partition=part)
        if base is None:
            base = sr.latency_cycles
        latencies.append(sr.latency_cycles)
        rows.append(
            {
                "DFEs": n_dfes,
                "latency (cycles)": sr.latency_cycles,
                "degradation": f"{(sr.latency_cycles / base - 1) * 100:+.2f}%",
                "crossings": len(sr.pipeline.crossings),
            }
        )
    result = ExperimentResult(
        exp_id="ablation-multidfe",
        title="Multi-DFE scale-out degradation (§III-B6)",
        columns=["DFEs", "latency (cycles)", "degradation", "crossings"],
        rows=rows,
    )
    return result, latencies


def test_multidfe_degradation_negligible(benchmark, reporter):
    result, latencies = benchmark(multidfe_sweep)
    reporter(benchmark, result)
    base = latencies[0]
    from repro.dataflow import MAXRING

    for n_dfes, lat in enumerate(latencies[1:], start=2):
        crossings = n_dfes - 1
        extra = lat - base
        # the only cost is link latency per crossing (plus a few cycles of
        # re-buffering): on a full-size network (~1e6 cycles) this is <0.01%.
        assert 0 <= extra <= crossings * (MAXRING.latency_cycles + 8), (
            f"{n_dfes} DFEs: {extra} extra cycles for {crossings} crossings"
        )


def test_resnet18_maxring_bandwidth(benchmark):
    """Full ResNet-18 partition: every crossing needs exactly 210 Mbps."""

    def build():
        return partition_network(direct_resnet18_graph())

    part = benchmark(build)
    assert part.n_dfes == 2
    assert part.link_feasible(MAXRING, fclk_mhz=105.0)
    for _, _, mbps in part.crossings:
        assert mbps == 210.0
        assert mbps / (MAXRING.bandwidth_gbps * 1000) < 0.06  # far below capacity
