"""§IV-B4 scalability: clocks per picture, >60 fps, Stratix-10 projection."""

from repro.eval import run_experiment


def test_scalability_analysis(benchmark, reporter):
    result = benchmark(run_experiment, "scalability")
    reporter(benchmark, result)
    q = {r["quantity"]: r["value"] for r in result.rows}
    # Same order of magnitude as the paper's 1.85e6 clocks/picture.
    assert 5e5 < q["ResNet-18 clocks/picture (ours)"] < 4e6
    # Conclusion: "more than 60 fps for all types of inputs".
    assert q["throughput (fps, pipelined)"] > 60
    # Stratix 10 (5x clock) projection lands in the paper's 3-4 ms window.
    assert q["runtime @Stratix-10 5x clock (ms)"] < 4.0
    assert q["DFEs required"] == 2
    # Conclusion speculations, reproduced by the models:
    assert q["DFEs required on Stratix 10"] == 1
    assert q["Stratix-10 DFE / P100 runtime ratio"] < 1.0
