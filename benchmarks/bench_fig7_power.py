"""Figure 7: power consumption of FPGA- vs GPU-based systems.

Reproduced shape: DFE power is an order of magnitude below the GPUs for
single-DFE designs, and rises when a network needs multiple DFEs (AlexNet
on three).
"""

from repro.eval import run_experiment


def test_figure7_power(benchmark, reporter):
    result = benchmark(run_experiment, "figure7")
    reporter(benchmark, result)
    single = [r for r in result.rows if r["DFEs"] == 1]
    multi = [r for r in result.rows if r["DFEs"] > 1]
    assert single and multi
    for r in single:
        assert r["GPU/DFE"] > 8, f"{r['input']}: only {r['GPU/DFE']:.1f}x"
    # multi-DFE power is higher than single-DFE power
    assert min(r["DFE (W)"] for r in multi) > max(r["DFE (W)"] for r in single)
    # but still well below the GPUs
    for r in multi:
        assert r["GPU/DFE"] > 2
