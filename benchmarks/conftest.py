"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, asserts its
shape claims, renders the rows the paper reports (printed under ``-s`` and
stored in ``benchmark.extra_info``), and times the regeneration.  Expensive
graph builds are cached across benches via :func:`repro.eval.cached_graph`.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    """Register the perfwatch plugin for PYTHONPATH=src runs.

    Installed checkouts get it through the ``pytest11`` entry point; this
    path covers uninstalled trees.  Registration is idempotent, so running
    tests/ and benchmarks/ in one session is fine.
    """
    from repro.perfwatch import plugin as perfwatch_plugin

    perfwatch_plugin.pytest_configure(config)


def report(benchmark, result) -> None:
    """Attach a rendered table to the benchmark and print it."""
    text = result.render()
    benchmark.extra_info["table"] = text
    print("\n" + text)


@pytest.fixture()
def reporter():
    return report


def pytest_sessionfinish(session, exitstatus):
    """Flush the simulator perf trajectory recorded by bench_streaming_sim."""
    from benchmarks.perf_trajectory import flush

    flush()
