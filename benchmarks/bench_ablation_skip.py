"""Ablation (§III-B5): what do skip connections actually cost?

The paper claims skip connections come "almost for free": one adder plus a
delay buffer that never stalls.  This bench decomposes the claim on a
residual network:

* timing — cycle-simulate the same tiny residual network with skips present
  and with the skip infrastructure removed (adds replaced by pass-through);
  the latency difference must be negligible;
* resources — the adder logic is negligible, the delay buffers are not free
  but live in FMem (quantified share of total BRAM);
* behaviour — the delay buffer never backpressures (checked in the
  simulator's stream stats).
"""

import numpy as np

from repro.dataflow import simulate
from repro.eval.reporting import ExperimentResult
from repro.hardware import estimate_network, estimate_network_timing
from repro.models import direct_resnet18_graph
from repro.nn import input_to_levels
from tests.conftest import make_tiny_resnet_model
from repro.nn.export import export_model


def skip_cost_table() -> ExperimentResult:
    from repro.hardware import DEFAULT_RESOURCE_CAL

    g = direct_resnet18_graph()
    res = estimate_network(g)
    cal = DEFAULT_RESOURCE_CAL
    add_nodes = [nr for nr in res.per_node if nr.kind == "add"]
    # Decompose: the 16-bit adder itself vs the 16-bit delay/datapath fabric
    # vs the FMem delay buffers.
    adder_luts = sum(cal.lut_per_adder_bit * 16 for _ in add_nodes)
    skip_bits = sum(nr.detail["skip_buffer_bits"] for nr in add_nodes)
    fabric_luts = cal.lut_per_skip_bit * skip_bits
    skip_bram = sum(nr.estimate.bram_kbits for nr in add_nodes)
    total = res.total
    rows = [
        {"component": "skip adders (LUT)", "amount": round(adder_luts),
         "share of network": f"{adder_luts / total.luts * 100:.2f}%"},
        {"component": "16-bit skip datapath fabric (LUT)", "amount": round(fabric_luts),
         "share of network": f"{fabric_luts / total.luts * 100:.1f}%"},
        {"component": "skip delay buffers (BRAM Kbits)", "amount": round(skip_bram),
         "share of network": f"{skip_bram / total.bram_kbits * 100:.1f}%"},
        {"component": "skip count", "amount": len(add_nodes), "share of network": ""},
    ]
    return ExperimentResult(
        exp_id="ablation-skip",
        title="Cost of skip connections on ResNet-18 (§III-B5)",
        columns=["component", "amount", "share of network"],
        rows=rows,
        notes=[
            "the paper's 'negligible' claim holds for the adders; the wide "
            "(16-bit) skip datapaths and delay buffers are the calibrated "
            "explanation of ResNet-18's +75% LUT in Table III.",
        ],
    )


def test_skip_resource_cost(benchmark, reporter):
    result = benchmark(skip_cost_table)
    reporter(benchmark, result)
    rows = {r["component"]: r for r in result.rows}
    adder_share = float(rows["skip adders (LUT)"]["share of network"].rstrip("%"))
    assert adder_share < 2.0, "adder logic must be negligible (§III-B5)"


def test_skip_timing_is_free(benchmark):
    """Latency with skip adds vs the same chain without them: ≈ equal."""
    model = make_tiny_resnet_model()
    graph = export_model(model, (16, 16, 3), name="tiny-resnet")
    rng = np.random.default_rng(0)
    images = rng.uniform(0, 1, size=(1, 16, 16, 3))
    levels = input_to_levels(images, model.layers[0].quantizer)

    def run():
        return simulate(graph, levels)

    sr = benchmark.pedantic(run, rounds=1, iterations=1)
    timing = estimate_network_timing(graph)
    # The adds/forks/thresholds contribute element-rate stages only; the
    # bottleneck is a convolution, so the skip infrastructure adds no
    # interval cycles at all.
    conv_cycles = max(t.cycles_per_image for t in timing.per_kernel if t.kind == "conv")
    assert timing.interval_cycles == conv_cycles
    # and the skip streams never backpressured in simulation
    for stream in sr.pipeline.skip_streams.values():
        assert stream.stats.full_rejections == 0
