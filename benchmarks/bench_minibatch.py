"""§IV-B1: GPU minibatch amortisation vs single-image DFE streaming."""

from repro.eval import run_experiment


def test_minibatch_amortisation(benchmark, reporter):
    result = benchmark(run_experiment, "minibatch")
    reporter(benchmark, result)
    rows = {r["batch"]: r for r in result.rows}
    # per-image GPU time falls with batch ("very small inference time
    # degradation" at 128-256) while the DFE column is flat.
    assert rows[256]["P100 ms/image"] < rows[1]["P100 ms/image"]
    assert rows[128]["P100 ms/image"] < 0.7 * rows[1]["P100 ms/image"]
    assert rows[1]["DFE ms/image"] == rows[256]["DFE ms/image"]
