"""Ablation (§III-B1b): depth-first vs width-first feature map scanning.

The paper's Figure 4 argument: depth-first scanning needs Θ(I·K) buffer per
line versus Θ(I·W + K) for width-first, so all images are streamed pixel by
pixel, channels innermost.  This bench quantifies the buffer savings across
the paper's layer shapes.
"""


from repro.dataflow import depth_first_buffer_elements, width_first_buffer_elements
from repro.eval.reporting import ExperimentResult

# (label, line length incl. padding, channels, k) — representative layers.
LAYERS = [
    ("vgg conv1_2 @32", 34, 64, 3),
    ("vgg conv3_2 @32", 10, 256, 3),
    ("vgg conv1_2 @144", 146, 64, 3),
    ("alexnet conv2", 31, 96, 5),
    ("resnet conv2_x", 58, 64, 3),
    ("resnet conv5_x", 9, 512, 3),
]


def scan_order_table() -> ExperimentResult:
    rows = []
    for label, line, ch, k in LAYERS:
        depth = depth_first_buffer_elements(line, ch, k)
        widthf = width_first_buffer_elements(line, line, ch, k)
        rows.append(
            {
                "layer": label,
                "depth-first (elems)": depth,
                "width-first (elems)": widthf,
                "savings": f"{widthf / depth:.1f}x",
            }
        )
    return ExperimentResult(
        exp_id="ablation-scan-order",
        title="Depth-first vs width-first window buffering (§III-B1b)",
        columns=["layer", "depth-first (elems)", "width-first (elems)", "savings"],
        rows=rows,
    )


def test_scan_order_ablation(benchmark, reporter):
    result = benchmark(scan_order_table)
    reporter(benchmark, result)
    for row in result.rows:
        assert row["depth-first (elems)"] < row["width-first (elems)"]
    # savings grow with line length (W ≫ K): the paper's asymptotic argument
    savings = [r["width-first (elems)"] / r["depth-first (elems)"] for r in result.rows]
    small = savings[0]  # line 34
    large = savings[2]  # line 146
    assert large > small
