"""Cycle-simulator benchmarks: end-to-end streaming inference throughput.

Times the cycle-accurate simulation itself (simulated-cycles per wall
second) on the tiny networks used across the test suite, and records the
architectural quantities the paper cares about: latency, steady-state
interval, and pipeline overlap.
"""

import numpy as np

from repro.dataflow import simulate
from repro.nn import input_to_levels
from repro.nn.export import export_model
from tests.conftest import make_tiny_chain_model, make_tiny_resnet_model


def test_streaming_chain_simulation(benchmark):
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (1, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    benchmark.extra_info["latency_cycles"] = sr.latency_cycles
    assert sr.cycles > 0


def test_streaming_residual_simulation(benchmark):
    model = make_tiny_resnet_model()
    graph = export_model(model, (16, 16, 3), name="tiny-resnet")
    rng = np.random.default_rng(1)
    levels = input_to_levels(rng.uniform(0, 1, (1, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    benchmark.extra_info["latency_cycles"] = sr.latency_cycles
    assert sr.cycles > 0


def test_functional_inference_reference(benchmark):
    from repro.nn import run_graph

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(2)
    levels = input_to_levels(rng.uniform(0, 1, (8, 16, 16, 3)), model.layers[0].quantizer)

    result = benchmark(run_graph, graph, levels)
    assert result.output.shape[0] == 8
