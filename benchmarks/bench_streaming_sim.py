"""Cycle-simulator benchmarks: end-to-end streaming inference throughput.

Times the cycle-accurate simulation itself (simulated-cycles per wall
second) on the tiny networks used across the test suite plus a paper-scale
CIFAR-10 VGG case, and records the architectural quantities the paper cares
about: latency, steady-state interval, and pipeline overlap.  Every case
feeds the perf-regression trajectory in ``BENCH_streaming.json`` through
:mod:`benchmarks.perf_trajectory`.
"""

import numpy as np

from benchmarks.perf_trajectory import record
from repro.dataflow import simulate
from repro.models import build_vgg_like, randomize_batchnorm
from repro.nn import input_to_levels
from repro.nn.export import export_model
from tests.conftest import make_tiny_chain_model, make_tiny_resnet_model


def _note_throughput(benchmark, case, sr, **extra):
    """Record cycles/sec + interval into extra_info and the trajectory."""
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["latency_cycles"] = sr.latency_cycles
    # The interval needs two completed images; single-image cases record None.
    interval = (
        sr.steady_state_interval if len(sr.run.completion_cycles) >= 2 else None
    )
    benchmark.extra_info["steady_state_interval"] = interval
    benchmark.extra_info["simulated_cycles"] = sr.cycles
    benchmark.extra_info["simulated_cycles_per_second"] = round(sr.cycles / seconds, 1)
    record(case, sr.cycles, seconds, **extra)


def test_streaming_chain_simulation(benchmark):
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    _note_throughput(benchmark, "tiny_chain", sr)
    assert sr.cycles > 0


def test_streaming_residual_simulation(benchmark):
    model = make_tiny_resnet_model()
    graph = export_model(model, (16, 16, 3), name="tiny-resnet")
    rng = np.random.default_rng(1)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    _note_throughput(benchmark, "tiny_resnet", sr)
    assert sr.cycles > 0


def _vgg_paper_scale():
    """A 32x32 CIFAR-10 VGG slice at quarter width — the paper-scale case."""
    model = build_vgg_like(input_size=32, width=0.25, classes=10, seed=11)
    randomize_batchnorm(model, np.random.default_rng(11))
    graph = export_model(model, (32, 32, 3), name="vgg-paper-scale")
    rng = np.random.default_rng(7)
    levels = input_to_levels(rng.uniform(0, 1, (1, 32, 32, 3)), model.layers[0].quantizer)
    return graph, levels


def test_streaming_vgg_paper_scale(benchmark):
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels)
    _note_throughput(benchmark, "vgg32_dense", sr)
    assert sr.cycles > 0


def test_streaming_vgg_paper_scale_bitops(benchmark):
    """Same workload through the packed XNOR-popcount datapath (§III-B1)."""
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels, use_bitops=True)
    _note_throughput(benchmark, "vgg32_bitops", sr)
    assert sr.cycles > 0


def test_functional_inference_reference(benchmark):
    from repro.nn import run_graph

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(2)
    levels = input_to_levels(rng.uniform(0, 1, (8, 16, 16, 3)), model.layers[0].quantizer)

    result = benchmark(run_graph, graph, levels)
    assert result.output.shape[0] == 8
