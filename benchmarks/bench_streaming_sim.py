"""Cycle-simulator benchmarks: end-to-end streaming inference throughput.

Times the cycle-accurate simulation itself (simulated-cycles per wall
second) on the tiny networks used across the test suite plus a paper-scale
CIFAR-10 VGG case, and records the architectural quantities the paper cares
about: latency, steady-state interval, and pipeline overlap.  Every case
feeds the perf-regression trajectory in ``BENCH_streaming.json`` through
:mod:`benchmarks.perf_trajectory` and is guarded against regressing its own
recorded rate.

The leap case is the scheduler-acceptance anchor: ``mode="leap"`` on the
VGG batch must sustain ≥1e6 simulated cycles per wall second.  The true
224×224 AlexNet / ResNet-18 cases run only with ``REPRO_BENCH_PAPER=1`` —
even leaping, their warm-up (one latency plus two steady-state periods,
simulated live) costs minutes of pure-Python wall time, which is honest to
record but too slow for a default bench sweep.
"""

import json
import os

import numpy as np
import pytest

from benchmarks.perf_trajectory import BENCH_PATH, record
from repro.dataflow import Tracer, simulate
from repro.perfwatch import PerfDataError, check_rate, latest_rate, load_trajectory, rate_floor
from repro.models import (
    build_vgg_like,
    direct_alexnet_graph,
    direct_resnet18_graph,
    randomize_batchnorm,
)
from repro.nn import input_to_levels
from repro.nn.export import export_model
from tests.conftest import make_tiny_chain_model, make_tiny_resnet_model


def _note_throughput(benchmark, case, sr, **extra):
    """Record cycles/sec + interval into extra_info and the trajectory."""
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["latency_cycles"] = sr.latency_cycles
    # The interval needs two completed images; single-image cases record None.
    benchmark.extra_info["steady_state_interval"] = sr.steady_state_interval
    benchmark.extra_info["simulated_cycles"] = sr.cycles
    benchmark.extra_info["simulated_cycles_per_second"] = round(sr.cycles / seconds, 1)
    record(case, sr.cycles, seconds, **extra)
    return sr.cycles / seconds


def _latest_recorded_rate(case):
    """Last recorded simulated_cycles_per_second for ``case``, or None."""
    if not BENCH_PATH.exists():
        return None
    try:
        entries = load_trajectory(BENCH_PATH)
    except PerfDataError:
        return None
    return latest_rate(entries, case)


def _guard_regression(case, cycles_per_second):
    """Assert ``case`` did not regress against its recorded trajectory.

    The tracing hooks must cost (almost) nothing when tracing is off — the
    untraced hot path only pays a None check.  The floor comes from the
    shared :mod:`repro.perfwatch.policy`: with ``REPRO_BENCH_STRICT=1``
    (quiet dedicated machine) the bound is 5%; by default a loose 40%
    sanity bound keeps the guard meaningful on noisy shared CI runners
    without flaking.
    """
    baseline = _latest_recorded_rate(case)
    if baseline is None:
        return
    violation = check_rate(case, cycles_per_second, baseline)
    assert violation is None, f"{violation} — untraced path regressed"


def _tiny_chain_case():
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)
    return graph, levels


# Same-session rates, so the telemetry-overhead guard compares against the
# hook-free rate measured on this very machine, not the recorded trajectory.
_session_rates = {}


def test_streaming_chain_simulation(benchmark):
    graph, levels = _tiny_chain_case()

    sr = benchmark(simulate, graph, levels)
    rate = _note_throughput(benchmark, "tiny_chain", sr)
    assert sr.cycles > 0
    _session_rates["tiny_chain"] = rate
    _guard_regression("tiny_chain", rate)


def test_streaming_chain_simulation_telemetry(benchmark):
    """Telemetry sampling on: the enabled overhead must stay within 5%.

    The collector reads aggregate counters once per ``sample_every`` cycles
    instead of hooking every event, so the telemetered run should track the
    plain run closely (the issue's bound: ≤5% overhead enabled, 0% when
    disabled — the disabled side is the plain case's trajectory guard).
    Strict mode enforces the 5%; the default bound absorbs shared-runner
    noise.
    """
    from repro.telemetry import Telemetry

    graph, levels = _tiny_chain_case()

    sr = benchmark(lambda: simulate(graph, levels, telemetry=Telemetry()))
    rate = _note_throughput(benchmark, "tiny_chain_telemetry", sr)
    assert sr.cycles > 0
    baseline = _session_rates.get("tiny_chain")
    if baseline:
        floor = rate_floor()
        assert rate >= baseline * floor, (
            f"telemetry overhead too high: {rate:,.0f} vs {baseline:,.0f} "
            f"hook-free simulated cycles/s (floor {floor:.0%})"
        )
    _guard_regression("tiny_chain_telemetry", rate)


def test_streaming_chain_loadgen(benchmark):
    """Open-loop load generation: the lifecycle instrumentation's cost.

    Admission stamping, image-boundary stream marks, and the source's
    arrival check ride the hot path of every run; this case bounds their
    cost against the closed-loop rate measured this session (same floors
    as the telemetry guard: 5% strict, 40% on shared runners).  The
    offered rate is far above capacity so the source never long-idles —
    the run exercises the instrumentation, not the scheduler's skip.
    """
    from repro.telemetry.loadgen import run_load

    graph, levels = _tiny_chain_case()

    result = benchmark(lambda: run_load(graph, levels, rate_fps=1e7))
    seconds = benchmark.stats.stats.min
    assert not result.aborted and result.report.n_images == 2
    p99 = result.report.service.p99
    benchmark.extra_info["p99_service_cycles"] = p99
    benchmark.extra_info["simulated_cycles"] = result.cycles
    rate = result.cycles / seconds
    benchmark.extra_info["simulated_cycles_per_second"] = round(rate, 1)
    record("tiny_chain_loadgen", result.cycles, seconds, p99_service_cycles=p99)
    baseline = _session_rates.get("tiny_chain")
    if baseline:
        floor = rate_floor()
        assert rate >= baseline * floor, (
            f"loadgen overhead too high: {rate:,.0f} vs {baseline:,.0f} "
            f"closed-loop simulated cycles/s (floor {floor:.0%})"
        )
    _guard_regression("tiny_chain_loadgen", rate)


def test_streaming_chain_simulation_traced(benchmark):
    """Full event tracing on: bounds the cost of recording every event."""
    graph, levels = _tiny_chain_case()

    sr = benchmark(lambda: simulate(graph, levels, trace=Tracer()))
    rate = _note_throughput(benchmark, "tiny_chain_traced", sr)
    assert sr.cycles > 0
    _guard_regression("tiny_chain_traced", rate)


def test_streaming_residual_simulation(benchmark):
    model = make_tiny_resnet_model()
    graph = export_model(model, (16, 16, 3), name="tiny-resnet")
    rng = np.random.default_rng(1)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    rate = _note_throughput(benchmark, "tiny_resnet", sr)
    assert sr.cycles > 0
    _guard_regression("tiny_resnet", rate)


def _vgg_paper_scale(n_images=1):
    """A 32x32 CIFAR-10 VGG slice at quarter width — the paper-scale case."""
    model = build_vgg_like(input_size=32, width=0.25, classes=10, seed=11)
    randomize_batchnorm(model, np.random.default_rng(11))
    graph = export_model(model, (32, 32, 3), name="vgg-paper-scale")
    rng = np.random.default_rng(7)
    levels = input_to_levels(
        rng.uniform(0, 1, (n_images, 32, 32, 3)), model.layers[0].quantizer
    )
    return graph, levels


def test_streaming_vgg_paper_scale(benchmark):
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels)
    rate = _note_throughput(benchmark, "vgg32_dense", sr)
    assert sr.cycles > 0
    _guard_regression("vgg32_dense", rate)


def test_streaming_vgg_paper_scale_bitops(benchmark):
    """Same workload through the packed XNOR-popcount datapath (§III-B1)."""
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels, use_bitops=True)
    rate = _note_throughput(benchmark, "vgg32_bitops", sr)
    assert sr.cycles > 0
    _guard_regression("vgg32_bitops", rate)


def test_streaming_vgg_leap(benchmark):
    """The leap scheduler's acceptance anchor: ≥1e6 simulated cycles/s.

    256 images through the VGG slice: the controller proves the period
    during the first handful and fast-forwards the other ~250 windows, so
    the wall clock is dominated by warm-up plus the batched GEMM output
    pass.  One round only — the run is seconds long, and the rate floor
    (not timer variance) is what this case exists to enforce.
    """
    graph, levels = _vgg_paper_scale(n_images=256)

    sr = benchmark.pedantic(
        lambda: simulate(graph, levels, mode="leap"), rounds=1, iterations=1
    )
    rep = sr.leap_report
    assert rep is not None and rep.leaps >= 1
    rate = _note_throughput(
        benchmark,
        "vgg32_leap",
        sr,
        leaps=rep.leaps,
        leaped_windows=rep.windows,
        leaped_cycles=rep.leaped_cycles,
        period=rep.period,
    )
    assert rate >= 1e6, (
        f"leap scheduler too slow: {rate:,.0f} simulated cycles/s "
        "(acceptance floor is 1,000,000)"
    )
    _guard_regression("vgg32_leap", rate)


_PAPER_BENCH = pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_PAPER"),
    reason="224×224 paper-scale simulation costs minutes of warm-up even "
    "with leaping; set REPRO_BENCH_PAPER=1 (the CI leap-smoke job does)",
)


@_PAPER_BENCH
def test_streaming_alexnet224_leap(benchmark):
    """Paper-scale AlexNet (224×224) under the leap scheduler."""
    graph = direct_alexnet_graph(width=0.25, fc_features=1024, classes=100)
    rng = np.random.default_rng(3)
    images = rng.integers(0, 4, size=(6, 224, 224, 3))

    sr = benchmark.pedantic(
        lambda: simulate(graph, images, mode="leap"), rounds=1, iterations=1
    )
    rep = sr.leap_report
    assert rep is not None and rep.leaps >= 1
    rate = _note_throughput(
        benchmark, "alexnet224_leap", sr, leaps=rep.leaps, period=rep.period
    )
    _guard_regression("alexnet224_leap", rate)


@_PAPER_BENCH
def test_streaming_resnet18_224_leap(benchmark):
    """Paper-scale ResNet-18 (224×224): the §IV-B4 interval, simulated.

    ``skip_sizing="bound"`` uses the closed-form §III-B5 capacity instead
    of the exact replay solver (which alone costs ~a minute at this scale);
    the bound is proven safe, only the high-water sanitizer's exactness
    claim needs the solver, so it is skipped here.
    """
    graph = direct_resnet18_graph()
    rng = np.random.default_rng(4)
    images = rng.integers(0, 4, size=(6, 224, 224, 3))

    sr = benchmark.pedantic(
        lambda: simulate(graph, images, mode="leap", skip_sizing="bound", sanitize=False),
        rounds=1,
        iterations=1,
    )
    rep = sr.leap_report
    assert rep is not None and rep.leaps >= 1
    # The simulated steady-state interval must sit in the paper's ~1.85e6
    # clocks-per-picture window (the order-of-magnitude band the
    # scalability experiment enforces for the analytic model).
    assert 5e5 < sr.steady_state_interval < 4e6
    rate = _note_throughput(
        benchmark, "resnet18_224_leap", sr, leaps=rep.leaps, period=rep.period
    )
    _guard_regression("resnet18_224_leap", rate)


def test_fleet_parallel_speedup(benchmark):
    """4-replica fleet: the worker pool vs the serial reference path.

    Replica simulations are independent by construction (the router works
    from a calibrated virtual queue, not live fabric state), so a 4-worker
    pool on ≥4 cores must cut wall clock by at least 2x — the floor the
    issue sets.  Machines with fewer cores still run both paths (the
    byte-identity check is core-count-independent) but skip the speedup
    assertion: a pool cannot beat serial without parallel hardware.
    """
    import time

    from repro.fleet import FleetConfig, ReplicaSpec, plan_fleet, simulate_fleet

    spec = ReplicaSpec("vgg", 16, width=0.0625)
    config_kwargs = dict(
        replicas=[spec] * 4,
        rate_fps=40_000.0,
        n_requests=64,
        policy="rr",
        seed=0,
    )
    # Profile + route once, outside the timed region: both paths reuse the
    # same plan, so the comparison times replica simulation alone.
    plan = plan_fleet(FleetConfig(**config_kwargs))

    t0 = time.perf_counter()
    serial = simulate_fleet(FleetConfig(workers=0, **config_kwargs), plan=plan)
    serial_seconds = time.perf_counter() - t0

    pooled = benchmark.pedantic(
        lambda: simulate_fleet(FleetConfig(workers=4, **config_kwargs), plan=plan),
        rounds=1,
        iterations=1,
    )
    pool_seconds = benchmark.stats.stats.min

    assert serial.aggregate["conserved"] and pooled.aggregate["conserved"]
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        pooled.as_dict(), sort_keys=True
    ), "worker-pool fleet report diverged from the serial reference"

    speedup = serial_seconds / pool_seconds if pool_seconds > 0 else float("inf")
    total_cycles = sum(rep["cycles"] for rep in pooled.replicas)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["simulated_cycles"] = total_cycles
    record(
        "fleet_4x_vgg16",
        total_cycles,
        pool_seconds,
        serial_seconds=round(serial_seconds, 3),
        speedup=round(speedup, 2),
        cores=os.cpu_count(),
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"fleet worker pool too slow: {speedup:.2f}x over serial "
            f"({serial_seconds:.2f}s -> {pool_seconds:.2f}s; floor is 2x on 4 cores)"
        )


def test_streaming_plan_search(benchmark):
    """Static partition planning end-to-end on the tiny VGG chain.

    Times the whole ``plan_partition`` path — DP cut search, static
    feasibility re-scoring, resource ledgers, and the winner's exact
    zero-batch replay — on a fresh graph each round (the replay cache
    lives on the graph, so reusing one would time a dict lookup).  The
    recorded rate is replay-cycles per wall second, same currency as the
    simulator cases, guarded against its own trajectory.
    """
    from repro.models import direct_vgg_graph
    from repro.planner import plan_partition

    def _plan():
        graph = direct_vgg_graph(16, width=0.0625, classes=4)
        return plan_partition(graph)

    plan = benchmark(_plan)
    seconds = benchmark.stats.stats.min
    assert plan.n_dfes == 1 and plan.predicted is not None
    assert plan.predicted.interval is not None
    rate = plan.predicted.replay_cycles / seconds
    benchmark.extra_info["n_dfes"] = plan.n_dfes
    benchmark.extra_info["candidates_scored"] = plan.candidates_scored
    benchmark.extra_info["simulated_cycles_per_second"] = round(rate, 1)
    record(
        "tiny_chain_plan",
        plan.predicted.replay_cycles,
        seconds,
        n_dfes=plan.n_dfes,
        candidates_scored=plan.candidates_scored,
        predicted_interval=plan.predicted.interval,
    )
    _guard_regression("tiny_chain_plan", rate)


def test_functional_inference_reference(benchmark):
    from repro.nn import run_graph

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(2)
    levels = input_to_levels(rng.uniform(0, 1, (8, 16, 16, 3)), model.layers[0].quantizer)

    result = benchmark(run_graph, graph, levels)
    assert result.output.shape[0] == 8
