"""Cycle-simulator benchmarks: end-to-end streaming inference throughput.

Times the cycle-accurate simulation itself (simulated-cycles per wall
second) on the tiny networks used across the test suite plus a paper-scale
CIFAR-10 VGG case, and records the architectural quantities the paper cares
about: latency, steady-state interval, and pipeline overlap.  Every case
feeds the perf-regression trajectory in ``BENCH_streaming.json`` through
:mod:`benchmarks.perf_trajectory`.
"""

import json
import os

import numpy as np

from benchmarks.perf_trajectory import BENCH_PATH, record
from repro.dataflow import Tracer, simulate
from repro.models import build_vgg_like, randomize_batchnorm
from repro.nn import input_to_levels
from repro.nn.export import export_model
from tests.conftest import make_tiny_chain_model, make_tiny_resnet_model


def _note_throughput(benchmark, case, sr, **extra):
    """Record cycles/sec + interval into extra_info and the trajectory."""
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["latency_cycles"] = sr.latency_cycles
    # The interval needs two completed images; single-image cases record None.
    interval = (
        sr.steady_state_interval if len(sr.run.completion_cycles) >= 2 else None
    )
    benchmark.extra_info["steady_state_interval"] = interval
    benchmark.extra_info["simulated_cycles"] = sr.cycles
    benchmark.extra_info["simulated_cycles_per_second"] = round(sr.cycles / seconds, 1)
    record(case, sr.cycles, seconds, **extra)
    return sr.cycles / seconds


def _latest_recorded_rate(case):
    """Last recorded simulated_cycles_per_second for ``case``, or None."""
    if not BENCH_PATH.exists():
        return None
    try:
        entries = json.loads(BENCH_PATH.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    for entry in reversed(entries):
        rate = entry.get("cases", {}).get(case, {}).get("simulated_cycles_per_second")
        if rate:
            return float(rate)
    return None


def _guard_regression(case, cycles_per_second):
    """Assert ``case`` did not regress against its recorded trajectory.

    The tracing hooks must cost (almost) nothing when tracing is off — the
    untraced hot path only pays a None check.  With ``REPRO_BENCH_STRICT=1``
    (quiet dedicated machine) the bound is the issue's 5%; by default a
    loose 40% sanity bound keeps the guard meaningful on noisy shared CI
    runners without flaking.
    """
    baseline = _latest_recorded_rate(case)
    if baseline is None:
        return
    floor = 0.95 if os.environ.get("REPRO_BENCH_STRICT") else 0.60
    assert cycles_per_second >= baseline * floor, (
        f"{case}: {cycles_per_second:,.0f} simulated cycles/s is below "
        f"{floor:.0%} of the recorded {baseline:,.0f} — untraced path regressed"
    )


def _tiny_chain_case():
    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(0)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)
    return graph, levels


# Same-session rates, so the telemetry-overhead guard compares against the
# hook-free rate measured on this very machine, not the recorded trajectory.
_session_rates = {}


def test_streaming_chain_simulation(benchmark):
    graph, levels = _tiny_chain_case()

    sr = benchmark(simulate, graph, levels)
    rate = _note_throughput(benchmark, "tiny_chain", sr)
    assert sr.cycles > 0
    _session_rates["tiny_chain"] = rate
    _guard_regression("tiny_chain", rate)


def test_streaming_chain_simulation_telemetry(benchmark):
    """Telemetry sampling on: the enabled overhead must stay within 5%.

    The collector reads aggregate counters once per ``sample_every`` cycles
    instead of hooking every event, so the telemetered run should track the
    plain run closely (the issue's bound: ≤5% overhead enabled, 0% when
    disabled — the disabled side is the plain case's trajectory guard).
    Strict mode enforces the 5%; the default bound absorbs shared-runner
    noise.
    """
    from repro.telemetry import Telemetry

    graph, levels = _tiny_chain_case()

    sr = benchmark(lambda: simulate(graph, levels, telemetry=Telemetry()))
    rate = _note_throughput(benchmark, "tiny_chain_telemetry", sr)
    assert sr.cycles > 0
    baseline = _session_rates.get("tiny_chain")
    if baseline:
        floor = 0.95 if os.environ.get("REPRO_BENCH_STRICT") else 0.60
        assert rate >= baseline * floor, (
            f"telemetry overhead too high: {rate:,.0f} vs {baseline:,.0f} "
            f"hook-free simulated cycles/s (floor {floor:.0%})"
        )


def test_streaming_chain_loadgen(benchmark):
    """Open-loop load generation: the lifecycle instrumentation's cost.

    Admission stamping, image-boundary stream marks, and the source's
    arrival check ride the hot path of every run; this case bounds their
    cost against the closed-loop rate measured this session (same floors
    as the telemetry guard: 5% strict, 40% on shared runners).  The
    offered rate is far above capacity so the source never long-idles —
    the run exercises the instrumentation, not the scheduler's skip.
    """
    from repro.telemetry.loadgen import run_load

    graph, levels = _tiny_chain_case()

    result = benchmark(lambda: run_load(graph, levels, rate_fps=1e7))
    seconds = benchmark.stats.stats.min
    assert not result.aborted and result.report.n_images == 2
    p99 = result.report.service.p99
    benchmark.extra_info["p99_service_cycles"] = p99
    benchmark.extra_info["simulated_cycles"] = result.cycles
    rate = result.cycles / seconds
    benchmark.extra_info["simulated_cycles_per_second"] = round(rate, 1)
    record("tiny_chain_loadgen", result.cycles, seconds, p99_service_cycles=p99)
    baseline = _session_rates.get("tiny_chain")
    if baseline:
        floor = 0.95 if os.environ.get("REPRO_BENCH_STRICT") else 0.60
        assert rate >= baseline * floor, (
            f"loadgen overhead too high: {rate:,.0f} vs {baseline:,.0f} "
            f"closed-loop simulated cycles/s (floor {floor:.0%})"
        )
    _guard_regression("tiny_chain_loadgen", rate)


def test_streaming_chain_simulation_traced(benchmark):
    """Full event tracing on: bounds the cost of recording every event."""
    graph, levels = _tiny_chain_case()

    sr = benchmark(lambda: simulate(graph, levels, trace=Tracer()))
    _note_throughput(benchmark, "tiny_chain_traced", sr)
    assert sr.cycles > 0


def test_streaming_residual_simulation(benchmark):
    model = make_tiny_resnet_model()
    graph = export_model(model, (16, 16, 3), name="tiny-resnet")
    rng = np.random.default_rng(1)
    levels = input_to_levels(rng.uniform(0, 1, (2, 16, 16, 3)), model.layers[0].quantizer)

    sr = benchmark(simulate, graph, levels)
    _note_throughput(benchmark, "tiny_resnet", sr)
    assert sr.cycles > 0


def _vgg_paper_scale():
    """A 32x32 CIFAR-10 VGG slice at quarter width — the paper-scale case."""
    model = build_vgg_like(input_size=32, width=0.25, classes=10, seed=11)
    randomize_batchnorm(model, np.random.default_rng(11))
    graph = export_model(model, (32, 32, 3), name="vgg-paper-scale")
    rng = np.random.default_rng(7)
    levels = input_to_levels(rng.uniform(0, 1, (1, 32, 32, 3)), model.layers[0].quantizer)
    return graph, levels


def test_streaming_vgg_paper_scale(benchmark):
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels)
    _note_throughput(benchmark, "vgg32_dense", sr)
    assert sr.cycles > 0


def test_streaming_vgg_paper_scale_bitops(benchmark):
    """Same workload through the packed XNOR-popcount datapath (§III-B1)."""
    graph, levels = _vgg_paper_scale()

    sr = benchmark(simulate, graph, levels, use_bitops=True)
    _note_throughput(benchmark, "vgg32_bitops", sr)
    assert sr.cycles > 0


def test_functional_inference_reference(benchmark):
    from repro.nn import run_graph

    model = make_tiny_chain_model()
    graph = export_model(model, (16, 16, 3), name="tiny-chain")
    rng = np.random.default_rng(2)
    levels = input_to_levels(rng.uniform(0, 1, (8, 16, 16, 3)), model.layers[0].quantizer)

    result = benchmark(run_graph, graph, levels)
    assert result.output.shape[0] == 8
