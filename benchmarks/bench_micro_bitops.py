"""Microbenchmarks: XNOR-popcount arithmetic vs dense integer matmul.

Not a paper artefact per se, but the substrate behind §III-B1: these
measure the packed-bit arithmetic primitives the conv kernel uses and the
memory footprint advantage of 1-bit weight storage.
"""

import numpy as np

from repro.quantization import (
    BitPackedMatrix,
    BitplaneTensor,
    bitplane_gemm,
    pack_signs,
    xnor_popcount_gemm,
)

O, N, K = 128, 256, 1152  # a conv3_2-sized matrix multiply
RNG = np.random.default_rng(0)
W = RNG.choice([-1, 1], size=(O, K)).astype(np.int8)
X_BIN = RNG.choice([-1, 1], size=(N, K)).astype(np.int8)
X_LVL = RNG.integers(0, 4, size=(N, K))

W_PACKED = pack_signs(W)
X_PACKED = pack_signs(X_BIN)
X_PLANES = list(BitplaneTensor.from_levels(X_LVL, 2).planes)


def test_xnor_gemm_throughput(benchmark):
    result = benchmark(xnor_popcount_gemm, W_PACKED, X_PACKED, K)
    assert (result == X_BIN.astype(np.int64) @ W.astype(np.int64).T).all()


def test_dense_gemm_reference(benchmark):
    wf = W.astype(np.int64).T
    xf = X_BIN.astype(np.int64)
    result = benchmark(lambda: xf @ wf)
    assert result.shape == (N, O)


def test_bitplane_gemm_throughput(benchmark):
    result = benchmark(bitplane_gemm, W_PACKED, X_PLANES)
    assert (result == X_LVL @ W.astype(np.int64).T).all()


def test_weight_packing_throughput(benchmark):
    packed = benchmark(BitPackedMatrix.from_signs, W)
    # 1-bit storage: 64x smaller than int64, 8x smaller than int8.
    assert packed.nbytes * 8 <= W.size + 64 * O
