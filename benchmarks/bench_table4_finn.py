"""Table IV: comparison with FINN at 32x32.

Trend claims reproduced: FINN is faster and lower-power; our 2-bit
activation design is more accurate (1-bit vs 2-bit ordering measured by
actually training both variants — see bench_accuracy_bits for the full
training run; here the quick mode checks resources/time/power).
"""

from repro.eval import run_experiment


def test_table4_finn_comparison(benchmark, reporter):
    result = benchmark(run_experiment, "table4", quick=True)
    reporter(benchmark, result)
    metrics = {r["metric"]: r for r in result.rows}
    assert metrics["time (ms)"]["FINN"] < metrics["time (ms)"]["DFE (ours)"]
    assert metrics["power (W)"]["FINN"] < metrics["power (W)"]["DFE (ours)"]
    assert metrics["LUT"]["FINN"] < metrics["LUT"]["DFE (ours)"]
    assert metrics["BRAM (Kbits)"]["FINN"] < metrics["BRAM (Kbits)"]["DFE (ours)"]
    # Our DFE design point matches the paper's measured 12 W / 0.8 ms scale.
    assert 10 < metrics["power (W)"]["DFE (ours)"] < 14
