"""Table III: ResNet-18 vs AlexNet resources and runtime (224x224).

Reproduced shape claims: ResNet needs more LUTs/FFs but fewer BRAMs than
AlexNet; both meet real time; AlexNet needs 3 DFEs and ResNet 2.
"""

from repro.eval import run_experiment


def test_table3_resnet_vs_alexnet(benchmark, reporter):
    result = benchmark(run_experiment, "table3")
    reporter(benchmark, result)
    rows = {r["network"]: r for r in result.rows}
    # Resource shape (who is bigger in what) as in the paper.
    assert rows["resnet18"]["LUT"] > rows["alexnet"]["LUT"]
    assert rows["resnet18"]["FF"] > rows["alexnet"]["FF"]
    assert rows["resnet18"]["BRAM (Kbits)"] < rows["alexnet"]["BRAM (Kbits)"]
    # ResNet is slower on the DFE, as measured by the paper.
    assert rows["resnet18"]["runtime (ms)"] > rows["alexnet"]["runtime (ms)"]
    # Multi-DFE requirements (abstract: two and three FPGAs).
    assert rows["alexnet"]["DFEs"] == 3
    assert rows["resnet18"]["DFEs"] == 2
    # Calibration pins LUT/FF/BRAM of ResNet-18 to the paper within 5%.
    assert abs(rows["resnet18"]["LUT"] - 596081) / 596081 < 0.05
