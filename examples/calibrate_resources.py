"""The calibration procedure behind ``repro.hardware.calibration``.

The structural resource model (buffer sizes, cache geometry, popcount tree
widths, skip-path bits) comes from the paper's formulas; this script shows
how the translation constants were fitted to the paper's published
operating points and verifies the committed constants still reproduce them:

* anchor 1 — Table IV(b): VGG-like @32x32 (LUT 133,887 / FF 278,501 /
  BRAM 11,020 Kbit) pins the popcount-tree and buffer coefficients;
* anchor 2 — Figure 6: ~5% growth from 32x32 to 96x96 pins the
  buffer-bit coefficients (the only input-size-dependent term);
* anchor 3 — Table III ResNet-18 (LUT 596,081 / FF 1,175,373 /
  BRAM 30,854 Kbit) pins the 16-bit skip-datapath coefficient (the only
  ResNet-specific structural feature);
* check — Table III AlexNet lands within ~10% on LUT/FF without being
  fitted; its BRAM is over because 62.4 Mbit of raw 1-bit weights cannot
  fit the paper's 34.6 Mbit figure (see EXPERIMENTS.md).

Run:  python examples/calibrate_resources.py
"""

import numpy as np

from repro.hardware import DEFAULT_RESOURCE_CAL, estimate_network
from repro.models import direct_alexnet_graph, direct_resnet18_graph, direct_vgg_graph

ANCHORS = {
    "vgg-like @32 (Table IVb)": (direct_vgg_graph(32, pool_to=4), 133_887, 278_501, 11_020),
    "alexnet @224 (Table III)": (direct_alexnet_graph(), 343_295, 664_767, 34_600),
    "resnet18 @224 (Table III)": (direct_resnet18_graph(), 596_081, 1_175_373, 30_854),
}


def main() -> None:
    cal = DEFAULT_RESOURCE_CAL
    print("committed calibration constants:")
    for field, value in vars(cal).items() if hasattr(cal, "__dict__") else []:
        print(f"  {field} = {value}")
    from dataclasses import fields

    for f in fields(cal):
        print(f"  {f.name} = {getattr(cal, f.name)}")

    print(f"\n{'network':28s}{'LUT':>10s}{'paper':>10s}{'err':>7s}"
          f"{'FF':>11s}{'paper':>11s}{'err':>7s}{'BRAM':>9s}{'paper':>9s}{'err':>7s}")
    for name, (graph, lut, ff, bram) in ANCHORS.items():
        r = estimate_network(graph).total
        print(
            f"{name:28s}{r.luts:>10,.0f}{lut:>10,}{(r.luts / lut - 1) * 100:>+6.0f}%"
            f"{r.ffs:>11,.0f}{ff:>11,}{(r.ffs / ff - 1) * 100:>+6.0f}%"
            f"{r.bram_kbits:>9,.0f}{bram:>9,}{(r.bram_kbits / bram - 1) * 100:>+6.0f}%"
        )

    g32 = estimate_network(direct_vgg_graph(32, pool_to=4)).total
    g96 = estimate_network(direct_vgg_graph(96, pool_to=4)).total
    print(f"\nFigure 6 anchor — growth 32->96: "
          f"LUT {(g96.luts / g32.luts - 1) * 100:+.1f}%  "
          f"FF {(g96.ffs / g32.ffs - 1) * 100:+.1f}%  "
          f"BRAM {(g96.bram_kbits / g32.bram_kbits - 1) * 100:+.1f}%  (paper: ~+5%)")

    print("\nfitting sketch (the solved system):")
    print("  beta  = 0.05 * LUT_vgg32 / (bufbits_96 - bufbits_32)     [Figure 6]")
    print("  alpha = (LUT_vgg32 - infra - beta*bufbits_32) / treebits  [Table IVb]")
    print("  gamma = (LUT_rn18 - infra - alpha*tree - beta*buf) / skipbits  [Table III]")
    print("  (identically for FF; BRAM geometry is exact + per-kernel FMem fit)")


if __name__ == "__main__":
    main()
