"""Regenerate every table and figure of the paper in one run.

Prints Tables I-IV, Figures 5-8 and the §IV-B4 scalability analysis with
our measured values next to the paper's published ones.  Pass ``--quick``
to skip the training-based accuracy rows of Table IV.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.eval import run_all


def main() -> None:
    quick = "--quick" in sys.argv
    t0 = time.time()
    for result in run_all(quick=quick):
        print(result.render())
        print()
    print(f"(regenerated all artefacts in {time.time() - t0:.1f} s"
          f"{', quick mode' if quick else ''})")


if __name__ == "__main__":
    main()
