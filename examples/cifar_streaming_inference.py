"""CIFAR-scale streaming inference: the paper's Table IV scenario.

Builds the VGG-like network (FINN's CNV topology) at 32x32, estimates the
full-size design's resources/timing/power against the paper's published
numbers, then trains a scaled-down instance on synthetic CIFAR-like data
with both 2-bit (ours) and 1-bit (FINN-style) activations and verifies the
accuracy ordering through the cycle-accurate streaming path.

Run:  python examples/cifar_streaming_inference.py
"""

import numpy as np

from repro.baselines.finn import FINN_PAPER_POINT, finn_performance_model
from repro.datasets import make_dataset
from repro.dataflow import simulate
from repro.hardware import (
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    estimate_network,
    estimate_network_timing,
)
from repro.models import build_vgg_like, direct_vgg_graph
from repro.nn import export_model, input_to_levels
from repro.nn.inference import classify
from repro.nn.training import train


def full_size_design_point() -> None:
    print("=== full-size VGG-like @32x32: the Table IV design point ===")
    graph = direct_vgg_graph(32)
    resources = estimate_network(graph)
    timing = estimate_network_timing(graph)
    power = FPGAPowerModel(STRATIX_V_5SGSD8).power(resources)
    finn = finn_performance_model(graph)
    print(f"{'':24s}{'FINN':>12s}{'DFE (ours)':>12s}{'DFE (paper)':>12s}")
    print(f"{'time (ms)':24s}{FINN_PAPER_POINT.time_ms:>12.4f}{timing.latency_ms:>12.3f}{0.8:>12.1f}")
    print(f"{'power (W)':24s}{FINN_PAPER_POINT.power_w:>12.1f}{power.total_w:>12.1f}{12.0:>12.1f}")
    print(f"{'LUT':24s}{FINN_PAPER_POINT.luts:>12,}{round(resources.total.luts):>12,}{133887:>12,}")
    print(f"{'BRAM (Kbits)':24s}{FINN_PAPER_POINT.bram_kbits:>12,}{round(resources.total.bram_kbits):>12,}{11020:>12,}")
    print(f"(FINN folded-MVU model predicts {finn['time_ms']:.4f} ms for their architecture)")


def accuracy_ordering() -> None:
    print("\n=== accuracy: 2-bit vs 1-bit activations (scaled-down, synthetic) ===")
    ds = make_dataset("cifar10-like", n_train=320, n_test=160, classes=5, size=16, seed=1)
    results = {}
    for act_bits in (2, 1):
        model = build_vgg_like(input_size=16, width=0.25, classes=5, act_bits=act_bits, seed=1)
        train(model, ds.x_train, ds.y_train, epochs=6, batch_size=32, lr=2e-3, seed=1)
        graph = export_model(model, ds.input_shape, name=f"cnv-{act_bits}b")
        levels = input_to_levels(ds.x_test, model.layers[0].quantizer)
        acc = float((classify(graph, levels) == ds.y_test).mean())
        results[act_bits] = (acc, model, graph)
        print(f"  {act_bits}-bit activations: {acc:.3f}")
    print(f"ordering reproduced (paper: 84.2% > 80.1%): "
          f"{results[2][0] >= results[1][0]}")

    print("\n=== streaming check on the 2-bit model ===")
    acc, model, graph = results[2]
    levels = input_to_levels(ds.x_test[:2], model.layers[0].quantizer)
    sr = simulate(graph, levels)
    from repro.nn import run_graph

    ref = run_graph(graph, levels)
    print(f"cycle-simulated inference bit-exact: "
          f"{(sr.output == ref.output.reshape(sr.output.shape)).all()}; "
          f"latency {sr.latency_cycles:,} cycles")


if __name__ == "__main__":
    full_size_design_point()
    accuracy_ordering()
