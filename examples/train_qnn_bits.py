"""Activation bit-width study: why the paper uses 2-bit activations.

The paper's motivation (§I, §IV-B3): "in contrast to previous works, we use
2-bit activations instead of 1-bit ones, which improves AlexNet's top-1
accuracy from 41.8% to 51.03%", and on the VGG-like network 84.2% vs
FINN's 80.1%.  This example trains the same topology with 1-, 2- and 3-bit
activations on the synthetic dataset and reports integer-path accuracy and
the hardware cost of each choice (wider activations stream more bits and
buffer more, narrower ones lose accuracy).

Run:  python examples/train_qnn_bits.py
"""

import numpy as np

from repro.datasets import make_dataset
from repro.hardware import estimate_network, estimate_network_timing
from repro.models import build_vgg_like, direct_vgg_graph
from repro.nn import export_model, input_to_levels
from repro.nn.inference import classify
from repro.nn.training import train


def main() -> None:
    ds = make_dataset("cifar10-like", n_train=480, n_test=200, classes=5, size=16, seed=3)
    print(f"dataset: {ds.name} {ds.x_train.shape} -> {ds.classes} classes (chance {1 / ds.classes:.3f})")

    print(f"\n{'bits':>5s} {'accuracy':>9s} {'LUT (full)':>11s} {'FF (full)':>10s} {'stream bits':>12s}")
    accuracies = {}
    for bits in (1, 2, 3):
        model = build_vgg_like(input_size=16, width=0.25, classes=5, act_bits=bits, seed=3)
        train(model, ds.x_train, ds.y_train, epochs=8, batch_size=32, lr=2e-3, seed=3)
        graph = export_model(model, ds.input_shape, name=f"cnv-{bits}b")
        levels = input_to_levels(ds.x_test, model.layers[0].quantizer)
        acc = float((classify(graph, levels) == ds.y_test).mean())
        accuracies[bits] = acc
        # hardware cost of the same choice at full CNV size
        cost = estimate_network(direct_vgg_graph(32, act_bits=bits)).total
        print(f"{bits:>5d} {acc:>9.3f} {cost.luts:>11,.0f} {cost.ffs:>10,.0f} {bits:>12d}")

    print("\npaper's ordering (2-bit > 1-bit) reproduced:",
          accuracies[2] >= accuracies[1])
    print("diminishing returns beyond 2 bits (the paper's chosen trade-off):",
          f"Δ(1->2) = {accuracies[2] - accuracies[1]:+.3f},",
          f"Δ(2->3) = {accuracies[3] - accuracies[2]:+.3f}")


if __name__ == "__main__":
    main()
