"""ImageNet-scale networks across multiple DFEs: the paper's Table III scenario.

Builds the full ResNet-18 (Table I) and AlexNet graphs at 224x224,
partitions them across Stratix V DFEs, and reports resources, timing, power
and MaxRing bandwidth — the quantities behind Tables III and Figures 5/7/8
— plus the Stratix 10 projection of §IV-B4.

Run:  python examples/imagenet_multidfe.py
"""

from repro.dataflow.links import MAXRING
from repro.hardware import (
    P100,
    STRATIX_10_PROJECTION,
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    GPUModel,
    estimate_network,
    estimate_network_timing,
    partition_network,
)
from repro.models import direct_alexnet_graph, direct_resnet18_graph


def report(name: str, graph) -> None:
    print(f"\n=== {name} @224x224 ===")
    part = partition_network(graph)
    resources = estimate_network(graph, n_dfes=part.n_dfes)
    timing = estimate_network_timing(graph, partition=part.groups)
    power = FPGAPowerModel(STRATIX_V_5SGSD8).power(resources, n_dfes=part.n_dfes)

    print(f"1-bit weights:    {graph.total_weight_bits():,} bits")
    print(f"resources:        {resources.total.luts:,.0f} LUT  "
          f"{resources.total.ffs:,.0f} FF  {resources.total.bram_kbits:,.0f} Kbit BRAM")
    print(f"DFEs required:    {part.n_dfes} (fill cap {part.fill_cap:.0%})")
    for i in range(part.n_dfes):
        util = part.utilization(i)
        print(f"  DFE {i}: LUT {util['lut']:.0%}  FF {util['ff']:.0%}  BRAM {util['bram']:.0%}  "
              f"({len(part.groups[i])} kernels)")
    for u, v, mbps in part.crossings:
        print(f"  MaxRing crossing {u} -> {v}: {mbps:.0f} Mbps "
              f"({mbps / (MAXRING.bandwidth_gbps * 1000):.1%} of link)")
    print(f"latency:          {timing.latency_cycles:,} cycles = {timing.latency_ms:.2f} ms @105 MHz")
    print(f"throughput:       {timing.throughput_fps:,.0f} fps (pipelined)")
    print(f"overlap speedup:  {timing.overlap_speedup:.1f}x vs layer-sequential")
    print(f"board power:      {power.total_w:.1f} W; energy/image "
          f"{power.energy_per_image_j(timing.latency_ms) * 1000:.1f} mJ")

    gpu = GPUModel(P100)
    gpu_ms = gpu.time_per_image(graph).per_image_ms
    print(f"P100 baseline:    {gpu_ms:.2f} ms, {gpu.power_w():.0f} W "
          f"(DFE/GPU runtime ratio {timing.latency_ms / gpu_ms:.2f})")

    s10 = timing.at_clock(STRATIX_10_PROJECTION.fabric_mhz)
    print(f"Stratix 10 (5x):  {s10.latency_ms:.2f} ms projected")


def main() -> None:
    print("building full-size graphs (random weights; cost study only)...")
    report("ResNet-18", direct_resnet18_graph())
    report("AlexNet", direct_alexnet_graph())


if __name__ == "__main__":
    main()
