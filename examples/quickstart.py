"""Quickstart: train a tiny QNN, deploy it to the streaming simulator.

Walks the full pipeline of the paper in under a minute:

1. train a small VGG-like QNN (1-bit weights, 2-bit activations) with
   straight-through estimators on a synthetic CIFAR-like dataset;
2. export it: weights binarized + packed, BatchNorm + activation folded
   into per-channel threshold units (§III-B3);
3. run the exported integer graph functionally and through the
   cycle-accurate streaming dataflow simulator — bit-exact agreement;
4. report latency, throughput and pipeline overlap, plus the FPGA
   resource/power estimate of the design.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import make_dataset
from repro.dataflow import simulate
from repro.hardware import (
    STRATIX_V_5SGSD8,
    FPGAPowerModel,
    estimate_network,
    estimate_network_timing,
)
from repro.models import build_vgg_like
from repro.nn import export_model, input_to_levels, run_graph
from repro.nn.training import evaluate, train


def main() -> None:
    print("=== 1. train a small QNN (1-bit weights, 2-bit activations) ===")
    ds = make_dataset("cifar10-like", n_train=320, n_test=160, classes=5, size=16, seed=0)
    model = build_vgg_like(input_size=16, width=0.25, classes=5, seed=0)
    history = train(
        model, ds.x_train, ds.y_train, ds.x_test, ds.y_test,
        epochs=6, batch_size=32, lr=2e-3, verbose=True,
    )
    print(f"float-path validation accuracy: {history.final_val_accuracy:.3f} (chance 0.200)")

    print("\n=== 2. export: binarize weights, fold BatchNorm into thresholds ===")
    graph = export_model(model, ds.input_shape, name="quickstart")
    print(f"graph nodes: {len(graph.nodes)}; 1-bit weights: {graph.total_weight_bits():,} bits")

    print("\n=== 3. run integer inference: functional vs cycle-accurate streaming ===")
    in_q = model.layers[0].quantizer
    levels = input_to_levels(ds.x_test[:2], in_q)
    functional = run_graph(graph, levels)
    streaming = simulate(graph, levels)
    exact = (streaming.output == functional.output.reshape(streaming.output.shape)).all()
    print(f"bit-exact streaming vs functional: {exact}")
    assert exact

    acc = evaluate_integer(graph, in_q, ds)
    print(f"integer-path test accuracy: {acc:.3f}")

    print("\n=== 4. architectural report ===")
    timing = estimate_network_timing(graph)
    print(f"latency: {streaming.latency_cycles:,} cycles (analytic {timing.latency_cycles:,})")
    print(f"throughput interval: {timing.interval_cycles:,} cycles "
          f"-> {timing.throughput_fps:,.0f} fps at 105 MHz")
    print(f"overlap speedup vs layer-sequential: {timing.overlap_speedup:.1f}x")
    resources = estimate_network(graph)
    power = FPGAPowerModel(STRATIX_V_5SGSD8).power(resources)
    print(f"estimated resources: {resources.total.luts:,.0f} LUT, "
          f"{resources.total.ffs:,.0f} FF, {resources.total.bram_kbits:,.0f} Kbit BRAM")
    print(f"estimated board power: {power.total_w:.1f} W")


def evaluate_integer(graph, in_q, ds) -> float:
    from repro.nn.inference import classify

    levels = input_to_levels(ds.x_test, in_q)
    preds = classify(graph, levels)
    return float((preds == ds.y_test).mean())


if __name__ == "__main__":
    main()
