#!/usr/bin/env python3
"""AST lint for the kernel/stream contracts the dataflow engine depends on.

The fast scheduler's correctness proof (engine.py, DESIGN.md §4.1) rests on
behavioural contracts the type system cannot express; this linter enforces
them statically so a new kernel cannot silently break park/wake scheduling
or the integer-only datapath:

KC001  ``tick()`` must return a stall classification or None — i.e. every
       return inside a Kernel subclass's ``tick`` is bare, ``None``, or one
       of ``self._starved(...)`` / ``self._blocked(...)`` / ``self._idle(...)``.
       Anything else would make the engine park the kernel on a garbage
       code (or never park it), desynchronizing fast and exhaustive runs.
KC002  Kernels must not mutate streams outside ``push``/``pop``: no calls
       to mutators on a ``._fifo`` deque, and no assignments through
       attribute chains that are not rooted at ``self`` (reading
       ``stream._fifo`` on the hot path is allowed and idiomatic here).
       Out-of-band mutation would bypass the push/pop wake hooks.
KC003  No float arithmetic inside ``tick`` bodies (the quantized hot
       control path): no float literals, no true division, no ``float()``
       calls.  Numeric lowering lives in helpers like ``_compute_outputs``
       whose float64 GEMM is exact by magnitude (< 2**53) and out of the
       per-cycle path.
KC004  ``@dataclass`` declarations in hot-path modules must pass
       ``slots=True`` — per-cycle attribute access on stats/trace records
       is measurably faster and catches typo'd fields.
KC005  A kernel's slots-dataclass state (its ``stats`` record, or any
       attribute holding a same-file slots dataclass) may only be mutated
       from ``tick()`` / ``batch_compute()`` or helpers (transitively)
       called from them.  Mutation from anywhere else — a property, a
       reporting accessor, ``render()`` — means *observing* a kernel
       changes its counters, desynchronizing fast and exhaustive runs.

Usage: ``python tools/lint_kernels.py [--select KC001,KC005] [paths...]``
(default paths: the kernel and hot-path dataflow/fleet/planner modules).
Exits 1 when any violation is found.  Wired into CI next to ruff.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_PATHS = [
    "src/repro/kernels",
    "src/repro/dataflow/stream.py",
    "src/repro/dataflow/kernel.py",
    "src/repro/dataflow/trace.py",
    "src/repro/fleet",
    "src/repro/planner",
]

# Base-class names that mark a class as a streaming kernel.
KERNEL_BASES = {"Kernel"}

# deque/list mutators that would bypass the stream push/pop contract.
FIFO_MUTATORS = {
    "append",
    "appendleft",
    "clear",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popleft",
    "remove",
    "rotate",
}

ALLOWED_TICK_HELPERS = {"_starved", "_blocked", "_idle"}

# KC005: entry points from which state mutation is legitimate, and attribute
# names known (by convention) to hold slots-dataclass state even when the
# dataclass is defined in another module.
KC005_ROOTS = {"tick", "batch_compute"}
KNOWN_SLOTS_STATE = {"stats"}
# Constructors may initialize state fields before the engine ever runs.
KC005_EXEMPT = {"__init__", "__post_init__", "reset"}


class Violation:
    __slots__ = ("path", "line", "code", "message")

    def __init__(self, path: Path, line: int, code: str, message: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def render(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: {self.code} {self.message}"


def _attr_root(node: ast.expr) -> ast.expr:
    """Innermost expression of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_rooted(node: ast.expr) -> bool:
    root = _attr_root(node)
    return isinstance(root, ast.Name) and root.id == "self"


def _is_allowed_tick_return(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare return
    if isinstance(node, ast.Constant) and node.value is None:
        return True  # return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        func = node.func
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in ALLOWED_TICK_HELPERS
        ):
            return True
    return False


def _kernel_classes(tree: ast.Module) -> list[ast.ClassDef]:
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", None)
                if name in KERNEL_BASES:
                    found.append(node)
                    break
    return found


def _check_tick_returns(path: Path, cls: ast.ClassDef, out: list[Violation]) -> None:
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "tick"):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Return) and not _is_allowed_tick_return(node.value):
                out.append(
                    Violation(
                        path,
                        node.lineno,
                        "KC001",
                        f"{cls.name}.tick must return a stall classification "
                        "(self._starved/_blocked/_idle(...)) or None",
                    )
                )


def _chain_attrs(node: ast.expr) -> set[str]:
    """Attribute names along an attribute/subscript chain."""
    attrs: set[str] = set()
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
        node = node.value
    return attrs


def _is_stream_expr(node: ast.expr, stream_aliases: set[str]) -> bool:
    """Does this expression denote a stream (not the kernel's own state)?

    Streams are reached through ``self.inputs`` / ``self.outputs`` (possibly
    via a local alias like ``inp = self.inputs[0]``); everything else rooted
    at ``self`` is the kernel's own state and free to mutate.
    """
    root = _attr_root(node)
    if isinstance(root, ast.Name) and root.id in stream_aliases:
        return True
    if isinstance(root, ast.Name) and root.id == "self":
        attrs = _chain_attrs(node)
        return bool(attrs & {"inputs", "outputs"})
    return False


def _collect_aliases(func: ast.FunctionDef) -> tuple[set[str], set[str]]:
    """Local names aliasing streams and fifo deques (fixpoint over assigns)."""
    stream_aliases: set[str] = set()
    fifo_aliases: set[str] = set()
    assigns: list[tuple[ast.expr, ast.expr]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
                assigns.extend(zip(target.elts, value.elts))
            elif isinstance(target, ast.Tuple):
                assigns.extend((elt, value) for elt in target.elts)
            else:
                assigns.append((target, value))
    changed = True
    while changed:
        changed = False
        for target, value in assigns:
            if not isinstance(target, ast.Name):
                continue
            is_fifo = isinstance(value, ast.Attribute) and value.attr == "_fifo"
            if is_fifo:
                if target.id not in fifo_aliases:
                    fifo_aliases.add(target.id)
                    changed = True
            elif _is_stream_expr(value, stream_aliases):
                if target.id not in stream_aliases:
                    stream_aliases.add(target.id)
                    changed = True
    return stream_aliases, fifo_aliases


def _check_stream_mutation(path: Path, cls: ast.ClassDef, out: list[Violation]) -> None:
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        stream_aliases, fifo_aliases = _collect_aliases(item)

        def touches_fifo(node: ast.expr) -> bool:
            root = _attr_root(node)
            if isinstance(root, ast.Name) and root.id in fifo_aliases:
                return True
            return "_fifo" in _chain_attrs(node)

        for node in ast.walk(item):
            # Mutator call on a fifo deque: X._fifo.append(...) / fifo.popleft().
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if func.attr in FIFO_MUTATORS and touches_fifo(func.value):
                    out.append(
                        Violation(
                            path,
                            node.lineno,
                            "KC002",
                            f"{cls.name}.{item.name} mutates a stream FIFO directly "
                            f"(._fifo.{func.attr}); use Stream.push/pop",
                        )
                    )
            # Assignment into a stream or its FIFO: out.capacity = ..., fifo[0] = ...
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                if _is_stream_expr(target, stream_aliases) or touches_fifo(target):
                    out.append(
                        Violation(
                            path,
                            node.lineno,
                            "KC002",
                            f"{cls.name}.{item.name} mutates stream state outside "
                            "Stream.push/pop",
                        )
                    )


def _check_float_free_tick(path: Path, cls: ast.ClassDef, out: list[Violation]) -> None:
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "tick"):
            continue
        for node in ast.walk(item):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                out.append(
                    Violation(
                        path,
                        node.lineno,
                        "KC003",
                        f"float literal {node.value!r} in {cls.name}.tick "
                        "(quantized hot path must stay integer)",
                    )
                )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                out.append(
                    Violation(
                        path,
                        node.lineno,
                        "KC003",
                        f"true division in {cls.name}.tick "
                        "(quantized hot path must stay integer; use //)",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                out.append(
                    Violation(
                        path,
                        node.lineno,
                        "KC003",
                        f"float() call in {cls.name}.tick (quantized hot path must stay integer)",
                    )
                )


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name == "dataclass":
            return dec
    return None


def _has_slots_kwarg(dec: ast.expr) -> bool:
    return isinstance(dec, ast.Call) and any(
        kw.arg == "slots"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in dec.keywords
    )


def _check_slots_dataclasses(path: Path, tree: ast.Module, out: list[Violation]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        dec = _dataclass_decorator(node)
        if dec is None:
            continue
        if not _has_slots_kwarg(dec):
            out.append(
                Violation(
                    path,
                    node.lineno,
                    "KC004",
                    f"dataclass {node.name} must declare slots=True in hot-path modules",
                )
            )


def _slots_dataclass_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            dec = _dataclass_decorator(node)
            if dec is not None and _has_slots_kwarg(dec):
                names.add(node.name)
    return names


def _check_state_mutation_scope(
    path: Path, cls: ast.ClassDef, slots_classes: set[str], out: list[Violation]
) -> None:
    """KC005: slots-dataclass state mutates only under tick/batch_compute."""
    methods = {
        item.name: item for item in cls.body if isinstance(item, ast.FunctionDef)
    }
    roots = KC005_ROOTS & methods.keys()
    if not roots:
        # No local entry point — mutation scope belongs to the base class
        # that defines tick(); nothing to anchor the reachability walk to.
        return

    # Which self attributes hold slots-dataclass state: the conventional
    # names, plus anything assigned a same-file slots-dataclass instance.
    state_attrs = set(KNOWN_SLOTS_STATE)
    for item in methods.values():
        for node in ast.walk(item):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(node.value, ast.Call)
            ):
                continue
            func = node.value.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name in slots_classes:
                state_attrs.add(target.attr)

    # Methods transitively reachable from the entry points via self.X() calls.
    reachable = set(roots)
    changed = True
    while changed:
        changed = False
        for name in list(reachable):
            for node in ast.walk(methods[name]):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                func = node.func
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in methods
                    and func.attr not in reachable
                ):
                    reachable.add(func.attr)
                    changed = True

    for name, item in methods.items():
        if name in reachable or name in KC005_EXEMPT:
            continue
        for node in ast.walk(item):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                # Flag self.<state>.<field> = ... (any depth below the state
                # attribute), where <state> is a slots-dataclass record.
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                inner = target
                while isinstance(inner.value, (ast.Attribute, ast.Subscript)):  # type: ignore[union-attr]
                    inner = inner.value  # type: ignore[assignment]
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                    and inner.attr in state_attrs
                    and inner is not target
                ):
                    out.append(
                        Violation(
                            path,
                            node.lineno,
                            "KC005",
                            f"{cls.name}.{name} mutates slots state "
                            f"self.{inner.attr} outside the tick/batch_compute "
                            "call graph",
                        )
                    )


def lint_file(path: Path) -> list[Violation]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "KC000", f"syntax error: {exc.msg}")]
    out: list[Violation] = []
    slots_classes = _slots_dataclass_names(tree)
    for cls in _kernel_classes(tree):
        _check_tick_returns(path, cls, out)
        _check_stream_mutation(path, cls, out)
        _check_float_free_tick(path, cls, out)
        _check_state_mutation_scope(path, cls, slots_classes, out)
    _check_slots_dataclasses(path, tree, out)
    out.sort(key=lambda v: (str(v.path), v.line, v.code))
    return out


def lint_paths(paths: list[str]) -> list[Violation]:
    out: list[Violation] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                out.extend(lint_file(file))
        elif path.exists():
            out.extend(lint_file(path))
        else:
            out.append(Violation(path, 0, "KC000", "path does not exist"))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated violation codes to report (e.g. KC001,KC005); default: all",
    )
    args = parser.parse_args(argv)
    violations = lint_paths(list(args.paths))
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        violations = [v for v in violations if v.code in wanted]
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} kernel-contract violation(s)", file=sys.stderr)
        return 1
    print(f"kernel-contract lint clean ({len(list(args.paths))} path(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
